// Command benchgate is the CI perf regression gate: it parses `go test
// -bench` output, reduces each benchmark to its best (minimum) run —
// min-of-N is robust against scheduler noise, which only ever slows a
// run down — and compares ns/op and allocs/op against a checked-in
// baseline, failing on regressions beyond the tolerance.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime 100x -count 5 . | tee bench.out
//	go run ./cmd/benchgate -baseline BENCH_baseline.json bench.out
//
// With -update the measured results overwrite the baseline instead of
// being checked — run it on the reference machine when a PR
// deliberately shifts performance:
//
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -update bench.out
//
// Rules:
//   - ns/op: fail when measured > baseline × (1 + tol). Wall time is
//     machine-dependent, so the tolerance (default 20%) absorbs host
//     variation; the baseline should come from the CI class of machine.
//   - allocs/op: fail when measured > baseline × (1 + tol), and any
//     increase from a zero baseline fails — allocation counts are
//     deterministic, and zero-alloc paths are the ones this repo's
//     hot-path work guarantees.
//   - a baseline benchmark missing from the input fails (the gate must
//     not silently narrow); a new benchmark not in the baseline is
//     reported as a hint to refresh.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's reduced result.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baseline is the checked-in reference file.
type baseline struct {
	// Benchtime and Count document how the numbers were produced.
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Benchmarks maps the full benchmark name (sub-benchmarks included,
	// CPU suffix stripped) to its reference result.
	Benchmarks map[string]measurement `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		update       = flag.Bool("update", false, "write the measured results to the baseline instead of checking")
		tol          = flag.Float64("tol", 0.20, "allowed fractional regression in ns/op and allocs/op")
		benchtime    = flag.String("benchtime", "100x", "recorded in the baseline on -update (documentation only)")
		count        = flag.Int("count", 5, "recorded in the baseline on -update (documentation only)")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) == 0 {
		log.Fatal("no benchmark results in input")
	}

	if *update {
		b := baseline{Benchtime: *benchtime, Count: *count, Benchmarks: got}
		var buf strings.Builder
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, []byte(buf.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatalf("%v (run with -update to create the baseline)", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}

	failures, notes := compare(base.Benchmarks, got, *tol)
	for _, n := range notes {
		fmt.Println("benchgate: note:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("benchgate: FAIL:", f)
		}
		log.Fatalf("%d regression(s) beyond %.0f%% tolerance (refresh %s with -update if intended)",
			len(failures), *tol*100, *baselinePath)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", len(base.Benchmarks), *tol*100)
}

// compare checks measured results against the baseline. Both maps key
// by benchmark name.
func compare(base, got map[string]measurement, tol float64) (failures, notes []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if g.NsPerOp > b.NsPerOp*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
				name, g.NsPerOp, b.NsPerOp, 100*(g.NsPerOp/b.NsPerOp-1)))
		}
		switch {
		case b.AllocsPerOp == 0 && g.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs zero-alloc baseline", name, g.AllocsPerOp))
		case float64(g.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol):
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (%+.1f%%)",
				name, g.AllocsPerOp, b.AllocsPerOp, 100*(float64(g.AllocsPerOp)/float64(b.AllocsPerOp)-1)))
		}
		if b.NsPerOp > 0 && g.NsPerOp < b.NsPerOp*(1-tol) {
			notes = append(notes, fmt.Sprintf("%s: %.0f ns/op is %.1f%% below baseline — consider refreshing",
				name, g.NsPerOp, 100*(1-g.NsPerOp/b.NsPerOp)))
		}
	}
	for name := range got {
		if _, ok := base[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline — refresh with -update to start gating it", name))
		}
	}
	sort.Strings(notes)
	return failures, notes
}

// parseBench reads `go test -bench` output and reduces repeated runs
// (-count=N) of each benchmark to the minimum ns/op and allocs/op.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// BenchmarkName-8  100  1234 ns/op  [custom metrics...]  56 B/op  7 allocs/op
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		var m measurement
		var haveNs, haveAllocs bool
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, haveNs = v, true
			case "allocs/op":
				m.AllocsPerOp, haveAllocs = int64(v), true
			}
		}
		if !haveNs {
			continue
		}
		if !haveAllocs {
			// Benchmarks without ReportAllocs still gate on time alone.
			m.AllocsPerOp = 0
		}
		if prev, ok := out[name]; ok && seen[name] {
			if m.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = m.NsPerOp
			}
			if m.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = m.AllocsPerOp
			}
			out[name] = prev
			continue
		}
		out[name] = m
		seen[name] = true
	}
	return out, sc.Err()
}
