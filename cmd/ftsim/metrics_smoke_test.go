package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/design"
	"repro/internal/metrics"
	"repro/internal/region"
)

// TestMetricsEndpointSmoke stands up the same stack -metricsaddr wires
// together — a registry served over HTTP while a closed-loop replay
// runs against it — scrapes /metrics mid-run and again after, and
// asserts the scrape is well-formed JSON whose counters actually moved.
func TestMetricsEndpointSmoke(t *testing.T) {
	reg := metrics.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	url := fmt.Sprintf("http://%s/metrics", ln.Addr())

	scrape := func() (map[string]uint64, map[string]float64) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Counters map[string]uint64  `json:"counters"`
			Gauges   map[string]float64 `json:"gauges"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("scrape is not valid JSON: %v", err)
		}
		return doc.Counters, doc.Gauges
	}

	// A scraper polling while the replay runs — the endpoint must stay
	// consistent (valid JSON, monotone counters) mid-storm.
	var stop atomic.Bool
	scraped := make(chan int, 1)
	go func() {
		n := 0
		var lastEvents uint64
		for {
			counters, _ := scrape()
			if got := counters["online.admit.batches"]; got < lastEvents {
				t.Errorf("counter went backwards: %d → %d", lastEvents, got)
			} else {
				lastEvents = got
			}
			n++
			if stop.Load() {
				scraped <- n
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	pr, err := repro.NewProblem(repro.PaperTaskSet(), analysis.EDF, repro.PaperOverheadTotal)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := design.Solve(pr, design.MaxFlexibility, region.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := repro.Compile(pr)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cp.ConfigFor(sol.Config.P)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewOnlineManagerFromCompiled(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.RunClosedLoop(m, chaos.LoopOptions{Seed: 7, Events: 24, HorizonUnits: 240, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	if n := <-scraped; n == 0 {
		t.Fatal("the scraper never completed a scrape during the replay")
	}

	counters, gauges := scrape()
	for _, name := range []string{"sim.events", "sim.events.accepted", "sim.epochs", "sim.jobs.released", "online.admit.batches", "online.tasks.admitted"} {
		if counters[name] == 0 {
			t.Errorf("counter %s is zero after the replay; scrape saw %v", name, counters)
		}
	}
	if gauges["online.live_tasks"] == 0 {
		t.Errorf("gauge online.live_tasks is zero after the replay")
	}
}
