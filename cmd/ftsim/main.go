// Command ftsim designs a configuration for a task set and executes it
// on the modelled 4-core lock-step platform, optionally injecting
// transient faults and applying a recovery policy.
//
// Usage:
//
//	ftsim [-tasks file.json] [-alg edf|rm|dm] [-otot 0.05]
//	      [-goal max-period|max-slack] [-horizon 480]
//	      [-faultrate 0.02] [-faultdur 0.05] [-seed 1]
//	      [-recovery none|drop|backup|checkpoint] [-gantt 0]
//
// With -chaos the command instead storms an online admission manager
// built from the design — concurrent admissions, partial admissions,
// removals, fault-driven capacity revocations and restores — and
// checks the full-state invariants at every quiescent point:
//
//	ftsim -chaos [-chaosrounds 8] [-chaoswriters 0] [-chaosops 20] [-seed 1]
//
// With -scenario the command closes the analysis → execution loop: it
// generates a seeded workload timeline (admissions, removals, capacity
// revocations and restores), replays it against a live online manager
// through the scenario runtime under fault injection, and asserts that
// every admitted task met every deadline released during its residency
// — reshapes, revocations and faults included:
//
//	ftsim -scenario [-events 48] [-horizon 360] [-faultrate 0.005]
//	       [-faultdur 0.2] [-seed 1] [-gantt 0]
//
// Scenarios can also be driven from reproducible workload files:
// -scenariofile replays a scenario JSON file (see sim.ScenarioFile for
// the format) instead of generating a seeded timeline, and -scenarioout
// writes the timeline that was replayed — generated or loaded — back
// out, so a profiling or regression run can be repeated exactly:
//
//	ftsim -scenario -scenarioout storm.json
//	ftsim -scenariofile storm.json
//
// -cpuprofile and -memprofile capture pprof profiles of any run mode
// (written on clean exits).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/timeu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftsim: ")
	var (
		tasksPath  = flag.String("tasks", "", "task-set JSON file (default: the paper's Table 1)")
		designPath = flag.String("design", "", "design JSON file from ftdesign -o (skips solving)")
		algName    = flag.String("alg", "edf", "per-channel scheduler: edf, rm or dm")
		otot       = flag.Float64("otot", repro.PaperOverheadTotal, "total mode-switch overhead")
		goalName   = flag.String("goal", "max-period", "design goal: max-period or max-slack")
		horizon    = flag.Float64("horizon", 480, "simulated time units")
		faultRate  = flag.Float64("faultrate", 0, "Poisson fault rate per time unit (0 = none)")
		faultDur   = flag.Float64("faultdur", 0.05, "fault condition duration in time units")
		seed       = flag.Int64("seed", 1, "fault injector seed")
		recName    = flag.String("recovery", "none", "FS recovery policy: none, drop, backup or checkpoint")
		gantt      = flag.Float64("gantt", 0, "render an ASCII Gantt chart of the first N time units")

		chaosRun     = flag.Bool("chaos", false, "storm the online manager and check invariants instead of simulating")
		chaosRounds  = flag.Int("chaosrounds", 0, "chaos storm rounds (0 = default 8)")
		chaosWriters = flag.Int("chaoswriters", 0, "concurrent chaos writers (0 = one per channel)")
		chaosOps     = flag.Int("chaosops", 0, "operations per chaos writer per round (0 = default 20)")

		scenarioRun  = flag.Bool("scenario", false, "replay a seeded workload scenario against the online manager and assert zero misses")
		events       = flag.Int("events", 0, "scenario workload events (0 = default 48)")
		scenarioFile = flag.String("scenariofile", "", "replay this scenario JSON file instead of generating a timeline (implies -scenario)")
		scenarioOut  = flag.String("scenarioout", "", "write the replayed scenario timeline to this JSON file")

		metricsAddr = flag.String("metricsaddr", "", "serve /metrics (JSON) and /debug/vars (expvar) on this address during -chaos/-scenario runs")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (on clean exit)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file (on clean exit)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	alg, err := analysis.ParseAlg(*algName)
	if err != nil {
		log.Fatal(err)
	}
	goal, err := design.ParseGoal(*goalName)
	if err != nil {
		log.Fatal(err)
	}
	tasks := repro.PaperTaskSet()
	if *tasksPath != "" {
		f, err := os.Open(*tasksPath)
		if err != nil {
			log.Fatal(err)
		}
		tasks, err = repro.ReadTaskSet(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	pr, err := repro.NewProblem(tasks, alg, *otot)
	if err != nil {
		log.Fatal(err)
	}
	var cfg repro.Config
	if *designPath != "" {
		f, err := os.Open(*designPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err = core.ReadConfigJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// Prove the loaded design against the task set before running.
		pr.O = cfg.O
		if err := pr.Verify(cfg); err != nil {
			log.Fatalf("loaded design does not fit the task set: %v", err)
		}
	} else {
		sol, err := repro.Design(pr, goal)
		if err != nil {
			log.Fatal(err)
		}
		cfg = sol.Config
	}
	fmt.Printf("design: P=%.4f  Q̃=[FT %.4f, FS %.4f, NF %.4f]  slack=%.4f\n\n",
		cfg.P, cfg.UsableQ(repro.FT), cfg.UsableQ(repro.FS), cfg.UsableQ(repro.NF), cfg.Slack())

	if *chaosRun || *scenarioRun || *scenarioFile != "" {
		reg := metrics.New()
		if *metricsAddr != "" {
			ln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				log.Fatalf("metrics listener: %v", err)
			}
			reg.PublishExpvar("ftsim")
			mux := http.NewServeMux()
			mux.Handle("/metrics", metrics.Handler(reg))
			mux.Handle("/debug/vars", expvar.Handler())
			go func() {
				if err := http.Serve(ln, mux); err != nil {
					log.Printf("metrics server: %v", err)
				}
			}()
			fmt.Printf("metrics: serving on http://%s/metrics\n\n", ln.Addr())
		}
		// The bit-identity oracle re-derives minimal slots, so storm a
		// manager built from the from-scratch solve at the designed
		// period rather than from a possibly padded loaded design.
		cp, err := repro.Compile(pr)
		if err != nil {
			log.Fatal(err)
		}
		minCfg, err := cp.ConfigFor(cfg.P)
		if err != nil {
			log.Fatal(err)
		}
		m, err := repro.NewOnlineManagerFromCompiled(cp, minCfg)
		if err != nil {
			log.Fatal(err)
		}
		if *scenarioRun || *scenarioFile != "" {
			rate := *faultRate
			if rate == 0 {
				rate = -1 // ftsim's convention: no -faultrate means no faults
			}
			loopOpts := chaos.LoopOptions{
				Seed:               *seed,
				Events:             *events,
				HorizonUnits:       *horizon,
				FaultRate:          rate,
				FaultDurationUnits: *faultDur,
				Parallel:           true,
				CollectTrace:       *gantt > 0,
				Metrics:            reg,
			}
			if *scenarioFile != "" {
				f, err := os.Open(*scenarioFile)
				if err != nil {
					log.Fatal(err)
				}
				sf, err := sim.ReadScenario(f)
				f.Close()
				if err != nil {
					log.Fatal(err)
				}
				loopOpts.Scenario = &sf.Scenario
				loopOpts.SettlePeriods = sf.SettlePeriods
				// The file's horizon applies unless -horizon was given
				// explicitly on the command line.
				if sf.HorizonUnits > 0 && !flagWasSet("horizon") {
					loopOpts.HorizonUnits = sf.HorizonUnits
				}
			}
			res, err := chaos.RunClosedLoop(m, loopOpts)
			if res != nil {
				fmt.Printf("scenario: %s\n", res)
			}
			if *scenarioOut != "" && res != nil && res.Replay != nil {
				sf := &sim.ScenarioFile{HorizonUnits: loopOpts.HorizonUnits, SettlePeriods: loopOpts.SettlePeriods}
				for _, out := range res.Replay.Outcomes {
					sf.Scenario.Events = append(sf.Scenario.Events, out.Event)
				}
				f, ferr := os.Create(*scenarioOut)
				if ferr == nil {
					ferr = sf.WriteJSON(f)
					if cerr := f.Close(); ferr == nil {
						ferr = cerr
					}
				}
				if ferr != nil {
					log.Printf("writing scenario file: %v", ferr)
				} else {
					fmt.Printf("scenario: timeline written to %s\n", *scenarioOut)
				}
			}
			if err != nil {
				log.Fatal(err)
			}
			if h := &res.Replay.TransitionLateness; h.Count > 0 {
				fmt.Printf("transition lateness: %s\n", h)
			}
			if *gantt > 0 && res.Replay != nil && res.Replay.Trace != nil {
				fmt.Println()
				fmt.Print(res.Replay.Trace.Gantt(0, timeu.FromUnits(*gantt), 100))
			}
			if res.Metrics != nil {
				fmt.Printf("\nmetrics:\n%s\n", res.Metrics)
			}
			fmt.Println("scenario: every admitted residency met all deadlines")
			return
		}
		res, err := chaos.Run(m, pr, chaos.Options{
			Seed:         *seed,
			Rounds:       *chaosRounds,
			Writers:      *chaosWriters,
			OpsPerWriter: *chaosOps,
			Metrics:      reg,
		})
		if res != nil {
			fmt.Printf("chaos: %s\n", res)
		}
		if err != nil {
			log.Fatal(err)
		}
		if res.Metrics != nil {
			fmt.Printf("\nmetrics:\n%s\n", res.Metrics)
		}
		fmt.Println("chaos: all quiescent-point invariants held")
		return
	}

	opts := repro.SimOptions{
		Horizon:      timeu.FromUnits(*horizon),
		Parallel:     true,
		CollectTrace: *gantt > 0,
	}
	if *faultRate > 0 {
		opts.Injector = repro.PoissonFaults{Rate: *faultRate, Duration: timeu.FromUnits(*faultDur), Seed: *seed}
	}
	var rec sim.Recovery
	switch *recName {
	case "none", "drop":
		rec = nil
	case "backup":
		rec = recovery.PrimaryBackup{}
	case "checkpoint":
		rec = &recovery.Checkpoint{}
	default:
		log.Fatalf("unknown recovery policy %q", *recName)
	}
	opts.Recovery = rec

	res, err := repro.Simulate(cfg, tasks, alg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	if *gantt > 0 && res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.Gantt(0, timeu.FromUnits(*gantt), 100))
	}
	if res.TotalMisses() > 0 {
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag was given on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
