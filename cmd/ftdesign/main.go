// Command ftdesign computes the feasible-region landmarks (Figure 4
// points) and the two design solutions (Table 2) for a task set.
//
// Usage:
//
//	ftdesign [-tasks file.json] [-alg edf|rm|dm] [-otot 0.05]
//
// Without -tasks it runs the paper's 13-task example and reproduces the
// published numbers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ftdesign: ")
	var (
		tasksPath = flag.String("tasks", "", "task-set JSON file (default: the paper's Table 1)")
		algName   = flag.String("alg", "edf", "per-channel scheduler: edf, rm or dm")
		otot      = flag.Float64("otot", repro.PaperOverheadTotal, "total mode-switch overhead O_tot")
		outPath   = flag.String("o", "", "write the max-period design to this JSON file (for ftsim -design)")
	)
	flag.Parse()

	alg, err := analysis.ParseAlg(*algName)
	if err != nil {
		log.Fatal(err)
	}
	tasks := repro.PaperTaskSet()
	if *tasksPath != "" {
		f, err := os.Open(*tasksPath)
		if err != nil {
			log.Fatal(err)
		}
		tasks, err = repro.ReadTaskSet(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	pr, err := repro.NewProblem(tasks, alg, *otot)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Task set:")
	fmt.Println(repro.FormatTaskTable(tasks))

	noOver := pr
	noOver.O = repro.PerMode{}
	if maxP, err := repro.MaxFeasiblePeriod(noOver, repro.ExploreOptions{}); err == nil {
		fmt.Printf("max feasible period (O_tot = 0):      %.3f\n", maxP)
	} else {
		fmt.Printf("max feasible period (O_tot = 0):      none (%v)\n", err)
	}
	if _, maxO, err := repro.MaxAdmissibleOverhead(pr, repro.ExploreOptions{}); err == nil {
		fmt.Printf("max admissible total overhead:        %.3f\n", maxO)
	}
	if maxP, err := repro.MaxFeasiblePeriod(pr, repro.ExploreOptions{}); err == nil {
		fmt.Printf("max feasible period (O_tot = %.3f):  %.3f\n", *otot, maxP)
	} else {
		log.Fatalf("no feasible period at O_tot = %g: %v", *otot, err)
	}
	fmt.Println()

	b, c, err := repro.DesignBoth(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Design solutions (%s, O_tot = %.3f):\n", alg, *otot)
	fmt.Println(repro.FormatSolutions(b, c))

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Config.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max-period design written to %s\n", *outPath)
	}
}
