package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/timeu"
)

// facade_test exercises every public wrapper so that the umbrella API is
// proven wired to the right internals (each delegate has its own deep
// tests in its package).

func TestFacadeTaskSetIO(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTaskSet(&buf, PaperTaskSet()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTaskSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 13 {
		t.Errorf("round trip lost tasks: %d", len(got))
	}
	if _, err := ReadTaskSet(strings.NewReader("junk")); err == nil {
		t.Error("junk should be rejected")
	}
}

func TestFacadeFormatters(t *testing.T) {
	b, c, err := DesignBoth(PaperProblem(EDF))
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatSolutions(b, c); !strings.Contains(s, "max-flexibility") {
		t.Error("FormatSolutions incomplete")
	}
	var buf bytes.Buffer
	pts, err := Explore(PaperProblem(EDF), ExploreOptions{PMax: 1, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&buf, map[string][]SweepPoint{"edf": pts}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,P,lhs") {
		t.Error("CSV header missing")
	}
}

func TestFacadeExploreParallel(t *testing.T) {
	pr := PaperProblem(EDF)
	opts := ExploreOptions{PMax: 2, Samples: 64}
	seq, err := Explore(pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExploreParallel(pr, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatal("parallel sweep diverged")
		}
	}
}

func TestFacadeCriticalScaling(t *testing.T) {
	f, err := CriticalScaling(PaperProblem(EDF), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 1 {
		t.Errorf("interior scaling factor %g should exceed 1", f)
	}
}

func TestFacadePartitionWrappers(t *testing.T) {
	got, err := AutoPartitionWith(PaperTaskSet(), PartitionOptions{
		Heuristic: partition.FirstFit,
		Alg:       EDF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeOnline(t *testing.T) {
	pr := PaperProblem(EDF)
	sol, err := Design(pr, MaxFlexibility)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewOnlineManager(pr, sol.Config)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Slack() <= 0 {
		t.Error("max-flexibility design should have slack")
	}
	if err := mgr.Admit(Task{Name: "huge", C: 5, T: 10, Mode: FT}); err == nil {
		t.Error("huge task should be rejected")
	}
}

func TestFacadeSplit(t *testing.T) {
	pr := PaperProblem(EDF)
	sol, err := SolveSplit(pr, 1.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.K != 3 || sol.Slack < 0 {
		t.Errorf("bad split solution %+v", sol)
	}
	best, err := BestSplit(pr, 1.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Allocated > sol.Allocated+1e-9 {
		t.Error("BestSplit worse than an explicit k")
	}
}

func TestFacadeLayout(t *testing.T) {
	pr := PaperProblem(EDF)
	l, err := SolveLayout(pr, 6.0, SubSlotCounts{FT: 1, FS: 4, NF: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateLayout(l, pr.Tasks, EDF, SimOptions{Horizon: timeu.FromUnits(240), Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 0 {
		t.Errorf("layout design missed deadlines:\n%s", res.Summary())
	}
	// The non-uniform layout rescues a period the single-slot design
	// space cannot reach at all (max feasible single-slot P ≈ 2.97).
	if maxP, err := MaxFeasiblePeriod(pr, ExploreOptions{}); err != nil || l.P <= maxP {
		t.Errorf("showcase broken: layout P %g should exceed single-slot max %g (%v)", l.P, maxP, err)
	}
}

func TestFacadeConstantsCoherent(t *testing.T) {
	if FT.Channels() != 1 || FS.Channels() != 2 || NF.Channels() != 4 {
		t.Error("mode aliases broken")
	}
	if EDF.String() != "EDF" || RM.String() != "RM" || DM.String() != "DM" {
		t.Error("alg aliases broken")
	}
	if math.Abs(PaperOverheadTotal-0.05) > 1e-12 {
		t.Error("paper overhead constant wrong")
	}
}
